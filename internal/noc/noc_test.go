package noc

import (
	"testing"
	"testing/quick"
)

func TestLatencyRegimes(t *testing.T) {
	n, err := New(DefaultConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		src, dst Loc
		want     int64
	}{
		{"same PE", Loc{0, 0, 0}, Loc{0, 0, 0}, 1},
		{"intra-pod", Loc{0, 0, 1}, Loc{0, 0, 1}, 1},
		{"intra-domain", Loc{0, 0, 0}, Loc{0, 0, 1}, 4},
		{"intra-cluster", Loc{0, 0, 0}, Loc{0, 1, 0}, 7},
		{"adjacent clusters", Loc{0, 0, 0}, Loc{1, 0, 0}, 8},
		{"corner to corner", Loc{0, 0, 0}, Loc{15, 0, 0}, 7 + 6},
	}
	for _, c := range cases {
		if got := n.Latency(c.src, c.dst); got != c.want {
			t.Errorf("%s: latency = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestLatencySymmetric(t *testing.T) {
	n, _ := New(DefaultConfig(4, 4))
	prop := func(a, b uint8) bool {
		src := Loc{Cluster: int(a) % 16, Domain: int(a) % 4, Pod: int(a) % 2}
		dst := Loc{Cluster: int(b) % 16, Domain: int(b) % 4, Pod: int(b) % 2}
		return n.Latency(src, dst) == n.Latency(dst, src)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendMatchesLatencyWhenUncontended(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.LinkBandwidth = 0 // unlimited
	n, _ := New(cfg)
	prop := func(a, b uint8, now uint16) bool {
		src := Loc{Cluster: int(a) % 16}
		dst := Loc{Cluster: int(b) % 16}
		t0 := int64(now)
		return n.Send(src, dst, t0) == t0+n.Latency(src, dst)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthContention(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.LinkBandwidth = 1
	n, _ := New(cfg)
	src, dst := Loc{Cluster: 0}, Loc{Cluster: 1}
	t1 := n.Send(src, dst, 100)
	t2 := n.Send(src, dst, 100)
	t3 := n.Send(src, dst, 100)
	if t1 == t2 || t2 == t3 {
		t.Errorf("bandwidth-1 link delivered concurrently: %d %d %d", t1, t2, t3)
	}
	if n.Stats().StallCycles == 0 {
		t.Error("no stall cycles recorded under contention")
	}
}

func TestDimensionOrderHops(t *testing.T) {
	n, _ := New(DefaultConfig(4, 4))
	// Cluster 0 (0,0) to cluster 15 (3,3): 6 hops.
	if h := n.hops(0, 15); h != 6 {
		t.Errorf("hops = %d, want 6", h)
	}
	if h := n.hops(5, 5); h != 0 {
		t.Errorf("self hops = %d", h)
	}
}

func TestMeshStats(t *testing.T) {
	n, _ := New(DefaultConfig(2, 2))
	n.Send(Loc{Cluster: 0}, Loc{Cluster: 0, Domain: 1}, 0)
	n.Send(Loc{Cluster: 0}, Loc{Cluster: 3}, 0)
	st := n.Stats()
	if st.Messages != 2 || st.ClusterBus != 1 || st.MeshMsgs != 1 || st.MeshHops != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestNewRejectsBadMesh(t *testing.T) {
	if _, err := New(Config{Width: 0, Height: 1}); err == nil {
		t.Error("accepted 0-width mesh")
	}
}

func TestNumClusters(t *testing.T) {
	n, _ := New(DefaultConfig(3, 2))
	if n.NumClusters() != 6 {
		t.Errorf("NumClusters = %d", n.NumClusters())
	}
}
