package noc

import (
	"strings"
	"testing"
)

// scriptedFaults is a FaultModel that replays a fixed sequence of
// (drop, delay) outcomes, so tests control exactly which attempts fail.
type scriptedFaults struct {
	script  []struct{ drop, delay int64 } // drop != 0 means dropped
	pos     int
	retries int
	timeout int64
}

func (s *scriptedFaults) TokenFault() (bool, int64) {
	if s.pos >= len(s.script) {
		return false, 0
	}
	o := s.script[s.pos]
	s.pos++
	return o.drop != 0, o.delay
}

func (s *scriptedFaults) MaxRetries() int           { return s.retries }
func (s *scriptedFaults) Timeout(attempt int) int64 { return s.timeout << attempt }

// TestSendReliableNilModelIsSend: without an attached model, SendReliable
// must be byte-for-byte Send — the invariant keeping fault-free runs
// identical to the pre-fault simulator.
func TestSendReliableNilModelIsSend(t *testing.T) {
	a, _ := New(DefaultConfig(4, 4))
	b, _ := New(DefaultConfig(4, 4))
	src, dst := Loc{Cluster: 0}, Loc{Cluster: 13}
	for now := int64(0); now < 50; now += 3 {
		got, err := a.SendReliable(src, dst, now)
		if err != nil {
			t.Fatal(err)
		}
		if want := b.Send(src, dst, now); got != want {
			t.Fatalf("now=%d: SendReliable %d != Send %d", now, got, want)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestSendReliableRetryTiming: two drops cost two ack timeouts before the
// delivered attempt is charged to the mesh at its retransmit time.
func TestSendReliableRetryTiming(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.LinkBandwidth = 0 // unlimited, so Send is time-invariant latency
	n, _ := New(cfg)
	fm := &scriptedFaults{retries: 8, timeout: 10}
	fm.script = []struct{ drop, delay int64 }{{1, 0}, {1, 0}, {0, 0}}
	n.AttachFaults(fm)
	src, dst := Loc{Cluster: 0}, Loc{Cluster: 3}
	lat := n.Latency(src, dst)
	arr, err := n.SendReliable(src, dst, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Timeouts: attempt 0 -> 10, attempt 1 -> 20; delivered send at 130.
	if want := 130 + lat; arr != want {
		t.Fatalf("arrival %d, want %d (latency %d after 30 cycles of timeouts)", arr, want, lat)
	}
	st := n.Stats()
	if st.Drops != 2 || st.Retries != 2 || st.RetryWaitCycles != 30 {
		t.Fatalf("stats %+v, want 2 drops, 2 retries, 30 wait cycles", st)
	}
}

// TestSendReliableTransientDelay: a delivered-but-delayed message arrives
// late by exactly the drawn delay and is counted.
func TestSendReliableTransientDelay(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.LinkBandwidth = 0
	n, _ := New(cfg)
	fm := &scriptedFaults{retries: 8, timeout: 10}
	fm.script = []struct{ drop, delay int64 }{{0, 7}}
	n.AttachFaults(fm)
	src, dst := Loc{Cluster: 0}, Loc{Cluster: 3}
	arr, err := n.SendReliable(src, dst, 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100 + n.Latency(src, dst) + 7; arr != want {
		t.Fatalf("arrival %d, want %d", arr, want)
	}
	if st := n.Stats(); st.Delayed != 1 || st.Drops != 0 {
		t.Fatalf("stats %+v, want 1 delayed, 0 drops", st)
	}
}

// TestSendReliableExhaustion: a message dropped past the retry budget
// returns an error naming the loss, never spins.
func TestSendReliableExhaustion(t *testing.T) {
	n, _ := New(DefaultConfig(4, 4))
	fm := &scriptedFaults{retries: 3, timeout: 1}
	fm.script = []struct{ drop, delay int64 }{{1, 0}, {1, 0}, {1, 0}, {1, 0}, {1, 0}}
	n.AttachFaults(fm)
	_, err := n.SendReliable(Loc{Cluster: 0}, Loc{Cluster: 1}, 5)
	if err == nil {
		t.Fatal("exhausted retries must error")
	}
	if !strings.Contains(err.Error(), "lost after") {
		t.Fatalf("error should describe the loss: %v", err)
	}
}
