// Package noc models the WaveScalar processor's inter-cluster interconnect:
// a 2-D mesh of switches with dimension-order (X then Y) routing, per-hop
// latency, and per-link bandwidth. Within a cluster the operand network is
// hierarchical (pod / domain / cluster buses) with the published fixed
// latencies; those are modeled here too so the WaveCache simulator has a
// single place to ask "how long until this operand arrives?".
package noc

import (
	"fmt"

	"wavescalar/internal/trace"
)

// Config holds the operand-network latencies from the published WaveScalar
// processor table.
type Config struct {
	// Mesh geometry in clusters.
	Width, Height int

	// Operand latencies (cycles).
	IntraPod     int64 // shared bypass: same pod
	IntraDomain  int64 // same domain
	IntraCluster int64 // same cluster, different domain
	// InterClusterBase is the fixed cost to leave a cluster; each mesh hop
	// adds LinkLatency.
	InterClusterBase int64
	LinkLatency      int64

	// LinkBandwidth is the number of messages a mesh link accepts per
	// cycle (the 4-port bidirectional switches of the paper). Zero means
	// unlimited.
	LinkBandwidth int64
}

// DefaultConfig returns the published parameters for a w x h cluster grid:
// pod 1, domain 4, cluster 7, inter-cluster 7 + hops.
func DefaultConfig(w, h int) Config {
	return Config{
		Width: w, Height: h,
		IntraPod:         1,
		IntraDomain:      4,
		IntraCluster:     7,
		InterClusterBase: 7,
		LinkLatency:      1,
		LinkBandwidth:    4,
	}
}

// Stats counts network activity.
type Stats struct {
	Messages   uint64
	PodLocal   uint64
	DomainHops uint64
	ClusterBus uint64
	MeshMsgs   uint64
	MeshHops   uint64
	// StallCycles accumulates cycles messages waited for link bandwidth.
	StallCycles uint64

	// Transient-fault recovery (all zero without an attached FaultModel).
	// Drops counts lost message attempts, Retries successful retransmits,
	// Delayed transiently delayed deliveries; RetryWaitCycles accumulates
	// sender ack-timeout cycles paid before retransmits.
	Drops           uint64
	Retries         uint64
	Delayed         uint64
	RetryWaitCycles uint64
}

// FaultModel injects transient faults into message delivery and supplies
// the ack/retransmit protocol parameters. internal/fault.Injector implements
// it; the interface lives here so noc stays free of the fault package.
type FaultModel interface {
	// TokenFault draws the outcome of one message attempt: dropped, and
	// any extra transient delay on a delivered message.
	TokenFault() (drop bool, delay int64)
	// MaxRetries bounds retransmit attempts per message.
	MaxRetries() int
	// Timeout is the sender's ack timeout before retransmit attempt
	// number attempt (0-based).
	Timeout(attempt int) int64
}

// linkState is a FIFO link queue: the latest cycle that granted bandwidth
// and how many messages it carried.
type linkState struct {
	cycle int64
	used  int64
}

// Network computes operand delivery times and accounts link contention.
type Network struct {
	cfg Config
	// links is the per-(router, direction) FIFO state, a flat array of
	// 4 directed links per cluster: index cluster*4+dir. A flat array
	// instead of a map keeps the per-hop bandwidth charge allocation-free
	// and branch-cheap on the simulator's hot path.
	links  []linkState
	stats  Stats
	faults FaultModel    // nil = perfect network
	tr     *trace.Tracer // nil = tracing disabled
}

// AttachFaults installs a transient-fault model consulted by SendReliable.
// Pass nil to restore the perfect network.
func (n *Network) AttachFaults(fm FaultModel) { n.faults = fm }

// AttachTracer installs the structured tracing sink (nil disables it);
// message-level and link-level counters are recorded per Send.
func (n *Network) AttachTracer(tr *trace.Tracer) { n.tr = tr }

// New builds a network.
func New(cfg Config) (*Network, error) {
	if cfg.Width < 1 || cfg.Height < 1 {
		return nil, fmt.Errorf("noc: bad mesh %dx%d", cfg.Width, cfg.Height)
	}
	return &Network{cfg: cfg, links: make([]linkState, cfg.Width*cfg.Height*4)}, nil
}

// Reset returns the network to its post-New state under cfg, reusing the
// link array when the mesh geometry is unchanged. The fault model and
// tracer attachments are cleared — a reused network belongs to a new run,
// which must attach its own.
func (n *Network) Reset(cfg Config) error {
	if cfg.Width < 1 || cfg.Height < 1 {
		return fmt.Errorf("noc: bad mesh %dx%d", cfg.Width, cfg.Height)
	}
	need := cfg.Width * cfg.Height * 4
	if need <= cap(n.links) {
		n.links = n.links[:need]
		clear(n.links)
	} else {
		n.links = make([]linkState, need)
	}
	n.cfg = cfg
	n.stats = Stats{}
	n.faults = nil
	n.tr = nil
	return nil
}

// Stats returns the counters.
func (n *Network) Stats() Stats { return n.stats }

// Cluster coordinates.
func (n *Network) clusterXY(c int) (int, int) { return c % n.cfg.Width, c / n.cfg.Width }

// NumClusters returns the cluster count.
func (n *Network) NumClusters() int { return n.cfg.Width * n.cfg.Height }

// Loc identifies a processing element's position in the hierarchy.
type Loc struct {
	Cluster int
	Domain  int
	Pod     int
}

// Latency returns the operand latency from src to dst, ignoring contention.
// The four regimes match the paper's Figure of communication types:
// intra-pod (A), intra-domain (B), intra-cluster (C), inter-cluster (D).
func (n *Network) Latency(src, dst Loc) int64 {
	switch {
	case src == dst:
		return n.cfg.IntraPod
	case src.Cluster == dst.Cluster && src.Domain == dst.Domain:
		if src.Pod == dst.Pod {
			return n.cfg.IntraPod
		}
		return n.cfg.IntraDomain
	case src.Cluster == dst.Cluster:
		return n.cfg.IntraCluster
	default:
		return n.cfg.InterClusterBase + n.cfg.LinkLatency*n.hops(src.Cluster, dst.Cluster)
	}
}

// hops counts mesh links on the dimension-order route.
func (n *Network) hops(a, b int) int64 {
	ax, ay := n.clusterXY(a)
	bx, by := n.clusterXY(b)
	return int64(abs(ax-bx) + abs(ay-by))
}

// Send computes the arrival cycle of a message injected at cycle now,
// charging bandwidth on every mesh link along the route. It also updates
// the statistics.
func (n *Network) Send(src, dst Loc, now int64) int64 {
	n.stats.Messages++
	switch {
	case src.Cluster == dst.Cluster && src.Domain == dst.Domain && src.Pod == dst.Pod:
		n.stats.PodLocal++
		n.tr.NetMsg(now, trace.LevelPod)
		return now + n.cfg.IntraPod
	case src.Cluster == dst.Cluster && src.Domain == dst.Domain:
		n.stats.DomainHops++
		n.tr.NetMsg(now, trace.LevelDomain)
		return now + n.cfg.IntraDomain
	case src.Cluster == dst.Cluster:
		n.stats.ClusterBus++
		n.tr.NetMsg(now, trace.LevelCluster)
		return now + n.cfg.IntraCluster
	}
	n.stats.MeshMsgs++
	n.tr.NetMsg(now, trace.LevelMesh)
	t := now + n.cfg.InterClusterBase
	cur := src.Cluster
	for cur != dst.Cluster {
		next := n.nextDimOrder(cur, dst.Cluster)
		granted := n.acquireLink(cur, next, t)
		if n.tr != nil {
			n.tr.LinkHop(t, cur, linkDir(cur, next, n.cfg.Width), granted-t)
		}
		t = granted + n.cfg.LinkLatency
		n.stats.MeshHops++
		cur = next
	}
	return t
}

// SendLocal is Send restricted to intra-cluster traffic (the caller
// guarantees src.Cluster == dst.Cluster), charging statistics and tracing
// to caller-owned sinks instead of the network's own. Intra-cluster buses
// carry no contention state, so this is a pure function of the config —
// shard workers use it to send concurrently while producing exactly the
// timing and counters Send would have produced sequentially, merging st
// and tr into the network's sinks at the batch barrier.
func (n *Network) SendLocal(src, dst Loc, now int64, st *Stats, tr *trace.Tracer) int64 {
	st.Messages++
	switch {
	case src.Domain == dst.Domain && src.Pod == dst.Pod:
		st.PodLocal++
		tr.NetMsg(now, trace.LevelPod)
		return now + n.cfg.IntraPod
	case src.Domain == dst.Domain:
		st.DomainHops++
		tr.NetMsg(now, trace.LevelDomain)
		return now + n.cfg.IntraDomain
	default:
		st.ClusterBus++
		tr.NetMsg(now, trace.LevelCluster)
		return now + n.cfg.IntraCluster
	}
}

// Add accumulates o into s, field by field. All Stats fields are
// commutative sums, so per-shard statistics merge exactly.
func (s *Stats) Add(o Stats) {
	s.Messages += o.Messages
	s.PodLocal += o.PodLocal
	s.DomainHops += o.DomainHops
	s.ClusterBus += o.ClusterBus
	s.MeshMsgs += o.MeshMsgs
	s.MeshHops += o.MeshHops
	s.StallCycles += o.StallCycles
	s.Drops += o.Drops
	s.Retries += o.Retries
	s.Delayed += o.Delayed
	s.RetryWaitCycles += o.RetryWaitCycles
}

// SendReliable is Send under the attached fault model: each attempt may be
// dropped (the sender times out waiting for the acknowledgement and
// retransmits with exponential backoff) or transiently delayed. Without an
// attached model it is exactly Send. When the retry budget is exhausted it
// returns an error — the caller surfaces it as a structured fault — and the
// message is counted dropped. Link bandwidth is charged only for the
// delivered attempt: a dropped message is modeled as corrupted in transit,
// and its bandwidth footprint is folded into the timeout it costs.
func (n *Network) SendReliable(src, dst Loc, now int64) (int64, error) {
	if n.faults == nil {
		return n.Send(src, dst, now), nil
	}
	send := now
	for attempt := 0; ; attempt++ {
		drop, delay := n.faults.TokenFault()
		if !drop {
			if delay > 0 {
				n.stats.Delayed++
			}
			return n.Send(src, dst, send) + delay, nil
		}
		n.stats.Drops++
		n.tr.Drop(send, -1)
		if attempt >= n.faults.MaxRetries() {
			return 0, fmt.Errorf("noc: message %v -> %v injected at cycle %d lost after %d attempts",
				src, dst, now, attempt+1)
		}
		wait := n.faults.Timeout(attempt)
		n.stats.Retries++
		n.stats.RetryWaitCycles += uint64(wait)
		n.tr.Retry(send, -1, wait)
		send += wait
	}
}

// nextDimOrder steps one cluster toward dst, X first.
func (n *Network) nextDimOrder(cur, dst int) int {
	cx, cy := n.clusterXY(cur)
	dx, _ := n.clusterXY(dst)
	switch {
	case cx < dx:
		return cur + 1
	case cx > dx:
		return cur - 1
	case cy < dst/n.cfg.Width:
		return cur + n.cfg.Width
	default:
		return cur - n.cfg.Width
	}
}

// acquireLink charges one message of bandwidth on the directed link
// cur->next requested at cycle t, returning the cycle the message actually
// traverses. The link is a FIFO queue: a message never overtakes earlier
// grants, so a request behind a backlog is bumped to the first cycle with
// spare bandwidth, in O(1).
func (n *Network) acquireLink(cur, next int, t int64) int64 {
	if n.cfg.LinkBandwidth <= 0 {
		return t
	}
	ls := &n.links[cur*4+linkDir(cur, next, n.cfg.Width)]
	switch {
	case t > ls.cycle:
		ls.cycle = t
		ls.used = 1
	case ls.used < n.cfg.LinkBandwidth:
		ls.used++
	default:
		ls.cycle++
		ls.used = 1
	}
	if ls.cycle > t {
		n.stats.StallCycles += uint64(ls.cycle - t)
	}
	return ls.cycle
}

func linkDir(cur, next, width int) int {
	switch next - cur {
	case 1:
		return 0
	case -1:
		return 1
	case width:
		return 2
	default:
		return 3
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
