// Command waveexp regenerates the reconstructed MICRO 2003 evaluation:
// every experiment table (E1–E11) over the benchmark suite. Results go to
// standard output (or -out file); see EXPERIMENTS.md for the accompanying
// paper-vs-measured discussion.
//
// Usage:
//
//	waveexp [-experiments E1,E4] [-benches fft,lu] [-grid 4x4] [-j 8]
//	        [-metrics] [-cpuprofile cpu.out] [-memprofile mem.out]
//	        [-out results.txt]
//	waveexp -corpus N [-corpus-seed S] [-cache-dir DIR] [-shard k/n]
//	        [-resume] [-j 8] [-out results.txt]
//
// Compilation and the experiments' simulation cells fan out across -j
// worker goroutines (default: one per CPU). The tables are byte-identical
// at any -j setting — results are collected by cell index, never by
// completion order — so only the timing lines vary between runs.
//
// -corpus N switches to experiment E13: N generated workload programs
// (seeded by -corpus-seed, round-robin across the testprogs corpus
// families) each differentially verified across all ten engines and
// aggregated into a per-family pass-rate and AIPC table. With -cache-dir
// the sweep is resumable (-resume skips cells whose cached result
// validates) and shardable (-shard k/n computes every n-th cell starting
// at k; separate shard invocations sharing a cache dir merge on read into
// one byte-identical table). -out is written atomically (temp file +
// rename), so an interrupted sweep never leaves a truncated results file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"wavescalar/internal/cli"
	"wavescalar/internal/harness"
	"wavescalar/internal/trace"
	"wavescalar/internal/wavecache"
	"wavescalar/internal/workloads"
)

func main() {
	exps := flag.String("experiments", "", "comma-separated experiment IDs (default: all)")
	benches := flag.String("benches", "", "comma-separated workloads (default: all; available: "+strings.Join(workloads.Names(), ",")+")")
	grid := flag.String("grid", "4x4", "cluster grid, WxH")
	outPath := flag.String("out", "", "write results to this file instead of stdout (atomic: temp file + rename)")
	unroll := flag.Int("unroll", 4, "loop unrolling factor")
	optLevel := flag.Int("O", 1, "optimization level: 0 = base passes only, 1 = compiler memory tier (part of the corpus cell-cache key)")
	jobs := flag.Int("j", runtime.NumCPU(), "worker goroutines for compilation and simulation cells (1 = sequential)")
	engineShards := flag.Int("shards", 0,
		"event-engine shards inside each simulation (0 or 1 = sequential; distinct from -shard, which splits corpus cells); results are bit-identical at every setting")
	memName := flag.String("mem", "",
		"memory ordering for cells that do not sweep modes themselves: wave-ordered (default), serialized, ideal, spec")
	metrics := flag.Bool("metrics", false,
		"aggregate WaveCache trace metrics across each experiment's cells and print a summary table after it")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (go tool pprof format) to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	corpusN := flag.Int("corpus", 0, "run experiment E13 over N generated corpus programs instead of the experiment suite")
	corpusSeed := flag.Int64("corpus-seed", 1, "base seed for the generated corpus (reproduces the corpus bit-for-bit)")
	cacheDir := flag.String("cache-dir", "", "content-addressed cell cache directory for resumable/shardable corpus sweeps")
	shard := flag.String("shard", "", "compute only shard k of n corpus cells, as k/n (e.g. 1/4); other cells merge from -cache-dir")
	resume := flag.Bool("resume", false, "skip corpus cells whose cached result validates (requires -cache-dir)")
	cachePrune := flag.String("cache-prune", "",
		"prune the -cache-dir cell cache first: age=DUR,size=BYTES (e.g. age=24h,size=256MB); with no -corpus, prune only and exit")
	flag.Parse()
	if *jobs < 1 {
		fatal(fmt.Errorf("-j must be >= 1, got %d", *jobs))
	}
	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()

	out, commit, err := openOut(*outPath)
	if err != nil {
		fatal(err)
	}

	if *cachePrune != "" {
		if *cacheDir == "" {
			fatal(fmt.Errorf("-cache-prune needs -cache-dir"))
		}
		age, size, err := harness.ParsePruneSpec(*cachePrune)
		if err != nil {
			fatal(err)
		}
		cc, err := harness.NewCellCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		st, err := cc.Prune(age, size)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cache-prune %s: %s\n", *cacheDir, st)
		if *corpusN == 0 {
			// Prune-only mode: bound a long-lived cache dir and exit.
			if err := commit(); err != nil {
				fatal(err)
			}
			return
		}
	}

	if *corpusN > 0 {
		runCorpus(out, *corpusN, *corpusSeed, *cacheDir, *shard, *resume, *jobs, *engineShards, *optLevel)
		if err := commit(); err != nil {
			fatal(err)
		}
		return
	}
	if *shard != "" || *resume || *cacheDir != "" {
		fatal(fmt.Errorf("-shard/-resume/-cache-dir apply only to -corpus sweeps"))
	}

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	copts := harness.DefaultCompileOptions()
	copts.Unroll = *unroll
	copts.OptLevel = *optLevel
	copts.Workers = *jobs
	start := time.Now()
	fmt.Fprintf(out, "compiling %d workloads...\n", len(pick(names)))
	set, err := harness.Suite(names, copts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "compiled in %v\n", time.Since(start).Round(time.Millisecond))
	if *metrics && copts.OptLevel >= 1 {
		var cm trace.Metrics
		for _, c := range set {
			c.AddCompileMetrics(&cm)
		}
		fmt.Fprintln(out, cm.CompileSummary("compile: memory-optimization tier (all workloads)").Render())
	}

	m := harness.DefaultMachineOptions()
	m.Workers = *jobs
	m.Shards = *engineShards
	if mm, err := wavecache.ParseMemoryMode(*memName); err != nil {
		fatal(err)
	} else {
		m.MemMode = mm
	}
	if *metrics {
		m.Metrics = trace.NewAggregate()
	}
	if _, err := fmt.Sscanf(*grid, "%dx%d", &m.GridW, &m.GridH); err != nil {
		fatal(fmt.Errorf("bad -grid %q: %v", *grid, err))
	}

	if *exps == "" {
		if err := harness.RunAll(set, m, out); err != nil {
			fatal(err)
		}
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e := harness.ExperimentByID(strings.TrimSpace(id))
			if e == nil {
				fatal(fmt.Errorf("unknown experiment %q", id))
			}
			fmt.Fprintf(out, "\n## %s — %s\n\nPaper claim: %s\n\n", e.ID, e.Title, e.Claim)
			t0 := time.Now()
			tbl, err := e.Run(set, m)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(out, tbl.Render())
			harness.WriteMetrics(e.ID, m, out)
			fmt.Fprintf(out, "(%s in %v)\n", e.ID, time.Since(t0).Round(time.Millisecond))
		}
	}
	fmt.Fprintf(out, "\ntotal time: %v\n", time.Since(start).Round(time.Millisecond))
	if err := commit(); err != nil {
		fatal(err)
	}
}

// runCorpus executes the E13 corpus sweep. Only deterministic content —
// the section header and the table — goes to out, so an -out file from a
// sharded, resumed, or cached run is byte-identical to a single
// invocation's; run statistics and timing go to stderr.
func runCorpus(out io.Writer, n int, seed int64, cacheDir, shard string, resume bool, jobs, engineShards, optLevel int) {
	o := harness.CorpusOptions{
		N:        n,
		Seed:     seed,
		CacheDir: cacheDir,
		Resume:   resume,
		Compile:  harness.DefaultCompileOptions(),
		Machine:  harness.DefaultCorpusMachine(),
	}
	o.Compile.OptLevel = optLevel
	o.Compile.Workers = jobs
	o.Machine.Workers = jobs
	// Engine shards change cell wall-clock, never cell results, so the
	// content-addressed cell cache is shared across -shards settings.
	o.Machine.Shards = engineShards
	if shard != "" {
		if _, err := fmt.Sscanf(shard, "%d/%d", &o.Shard, &o.Shards); err != nil || o.Shards < 1 || o.Shard < 1 || o.Shard > o.Shards {
			fatal(fmt.Errorf("bad -shard %q (want k/n with 1 <= k <= n)", shard))
		}
	}
	if (resume || shard != "") && cacheDir == "" {
		fatal(fmt.Errorf("-resume and -shard need -cache-dir to share cells across invocations"))
	}
	start := time.Now()
	run, err := harness.RunCorpus(o)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "\n## E13 — generated-corpus differential sweep\n\n")
	fmt.Fprintln(out, run.Table.Render())
	fmt.Fprintf(os.Stderr, "corpus: %d cells (%d computed, %d cached, %d missing", n, run.Computed, run.Cached, run.Missing)
	if run.CorruptEntries > 0 {
		fmt.Fprintf(os.Stderr, ", %d corrupt entries recomputed", run.CorruptEntries)
	}
	fmt.Fprintf(os.Stderr, ") in %v\n", time.Since(start).Round(time.Millisecond))
	if run.Mismatched > 0 {
		fatal(fmt.Errorf("%d corpus cells had cross-engine mismatches", run.Mismatched))
	}
}

// openOut resolves the -out destination. Writes stream to stdout and —
// when path is non-empty — to a temp file beside it; commit atomically
// renames the temp file into place, so an interrupted or failed sweep
// never leaves a truncated results file where a complete one belongs.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, nil, err
	}
	cleanupOut = func() { tmp.Close(); os.Remove(tmp.Name()) }
	commit := func() error {
		cleanupOut = nil
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		return nil
	}
	return io.MultiWriter(os.Stdout, tmp), commit, nil
}

func pick(names []string) []string {
	if len(names) == 0 {
		return workloads.Names()
	}
	return names
}

// stopProfiles flushes any active profiles; fatal calls it so -cpuprofile
// output survives error exits (os.Exit skips defers). cleanupOut removes
// a pending -out temp file on the same path, so failures leave neither a
// truncated result nor a stray temp file.
var (
	stopProfiles func()
	cleanupOut   func()
)

// startProfiles begins CPU profiling (when cpu is non-empty) and arranges
// an allocation-profile snapshot at stop (when heap is non-empty). The
// returned stop function is idempotent.
func startProfiles(cpu, heap string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if heap != "" {
			f, err := os.Create(heap)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}, nil
}

// fatal reports err and exits: 3 with a structured diagnostic when an
// experiment cell aborted on a FaultError (e.g. a watchdog-tripped corpus
// cell), 1 otherwise.
func fatal(err error) {
	if stopProfiles != nil {
		stopProfiles()
	}
	if cleanupOut != nil {
		cleanupOut()
	}
	cli.WriteDiagnostic(os.Stderr, "waveexp", err)
	os.Exit(cli.Code(err))
}
