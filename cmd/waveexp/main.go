// Command waveexp regenerates the reconstructed MICRO 2003 evaluation:
// every experiment table (E1–E11) over the benchmark suite. Results go to
// standard output (or -out file); see EXPERIMENTS.md for the accompanying
// paper-vs-measured discussion.
//
// Usage:
//
//	waveexp [-experiments E1,E4] [-benches fft,lu] [-grid 4x4] [-j 8]
//	        [-metrics] [-cpuprofile cpu.out] [-memprofile mem.out]
//	        [-out results.txt]
//
// Compilation and the experiments' simulation cells fan out across -j
// worker goroutines (default: one per CPU). The tables are byte-identical
// at any -j setting — results are collected by cell index, never by
// completion order — so only the timing lines vary between runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"wavescalar/internal/harness"
	"wavescalar/internal/trace"
	"wavescalar/internal/workloads"
)

func main() {
	exps := flag.String("experiments", "", "comma-separated experiment IDs (default: all)")
	benches := flag.String("benches", "", "comma-separated workloads (default: all; available: "+strings.Join(workloads.Names(), ",")+")")
	grid := flag.String("grid", "4x4", "cluster grid, WxH")
	outPath := flag.String("out", "", "write results to this file instead of stdout")
	unroll := flag.Int("unroll", 4, "loop unrolling factor")
	jobs := flag.Int("j", runtime.NumCPU(), "worker goroutines for compilation and simulation cells (1 = sequential)")
	metrics := flag.Bool("metrics", false,
		"aggregate WaveCache trace metrics across each experiment's cells and print a summary table after it")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (go tool pprof format) to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()
	if *jobs < 1 {
		fatal(fmt.Errorf("-j must be >= 1, got %d", *jobs))
	}
	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	copts := harness.DefaultCompileOptions()
	copts.Unroll = *unroll
	copts.Workers = *jobs
	start := time.Now()
	fmt.Fprintf(out, "compiling %d workloads...\n", len(pick(names)))
	set, err := harness.Suite(names, copts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "compiled in %v\n", time.Since(start).Round(time.Millisecond))

	m := harness.DefaultMachineOptions()
	m.Workers = *jobs
	if *metrics {
		m.Metrics = trace.NewAggregate()
	}
	if _, err := fmt.Sscanf(*grid, "%dx%d", &m.GridW, &m.GridH); err != nil {
		fatal(fmt.Errorf("bad -grid %q: %v", *grid, err))
	}

	if *exps == "" {
		if err := harness.RunAll(set, m, out); err != nil {
			fatal(err)
		}
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e := harness.ExperimentByID(strings.TrimSpace(id))
			if e == nil {
				fatal(fmt.Errorf("unknown experiment %q", id))
			}
			fmt.Fprintf(out, "\n## %s — %s\n\nPaper claim: %s\n\n", e.ID, e.Title, e.Claim)
			t0 := time.Now()
			tbl, err := e.Run(set, m)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(out, tbl.Render())
			harness.WriteMetrics(e.ID, m, out)
			fmt.Fprintf(out, "(%s in %v)\n", e.ID, time.Since(t0).Round(time.Millisecond))
		}
	}
	fmt.Fprintf(out, "\ntotal time: %v\n", time.Since(start).Round(time.Millisecond))
}

func pick(names []string) []string {
	if len(names) == 0 {
		return workloads.Names()
	}
	return names
}

// stopProfiles flushes any active profiles; fatal calls it so -cpuprofile
// output survives error exits (os.Exit skips defers).
var stopProfiles func()

// startProfiles begins CPU profiling (when cpu is non-empty) and arranges
// an allocation-profile snapshot at stop (when heap is non-empty). The
// returned stop function is idempotent.
func startProfiles(cpu, heap string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if heap != "" {
			f, err := os.Create(heap)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}, nil
}

func fatal(err error) {
	if stopProfiles != nil {
		stopProfiles()
	}
	fmt.Fprintln(os.Stderr, "waveexp:", err)
	os.Exit(1)
}
