// Command wavesim runs a wsl program on the cycle-level WaveCache simulator
// and optionally on the out-of-order superscalar baseline for comparison.
//
// Usage:
//
//	wavesim [-grid 4x4] [-placement dynamic-depth-first-snake]
//	        [-mem wave-ordered|serialized|ideal|spec] [-density 16] [-queue 64]
//	        [-faults defect=0.05,drop=0.01] [-fault-seed 1] [-max-cycles N]
//	        [-trace events.jsonl] [-trace-chrome trace.json] [-metrics]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//	        [-baseline] file.wsl
//
// -trace writes the structured event stream as JSONL (one event per line);
// -trace-chrome writes the same run in Chrome trace_event format — open it
// at chrome://tracing or https://ui.perfetto.dev. -metrics prints the
// per-run trace metrics summary table. All three are deterministic for a
// fixed program, configuration, and fault seed, and none of them perturbs
// the simulated timing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"wavescalar"
	"wavescalar/internal/cli"
	"wavescalar/internal/trace"
)

func main() {
	grid := flag.String("grid", "4x4", "cluster grid, WxH")
	pol := flag.String("placement", "dynamic-depth-first-snake",
		"placement policy: "+strings.Join(wavescalar.PlacementPolicies(), ", "))
	memFlag := flag.String("mem", "", "memory ordering: wave-ordered (default), serialized, ideal, spec")
	memmode := flag.String("memmode", "", "alias for -mem (kept for existing scripts)")
	density := flag.Int("density", 16, "instruction homes packed per PE")
	queue := flag.Int("queue", 64, "PE matching-table capacity")
	unroll := flag.Int("unroll", 4, "loop unrolling factor")
	optLevel := flag.Int("O", 1, "optimization level: 0 = base passes only, 1 = compiler memory tier")
	shards := flag.Int("shards", 0,
		"event-engine shards (0 or 1 = sequential); results are bit-identical at every setting")
	baseline := flag.Bool("baseline", false, "also run the superscalar baseline and report speedup")
	faults := flag.String("faults", "",
		"fault injection spec: defect=R,drop=R,delay=R,memloss=R,kill=PE@CYCLE,retries=N,timeout=C,delaycycles=C")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for deterministic fault injection")
	maxCycles := flag.Int64("max-cycles", 0,
		"watchdog bound on simulated cycles; exceeding it aborts with a diagnostic dump (0 = unbounded)")
	tracePath := flag.String("trace", "", "write the structured event stream to this file as JSONL")
	chromePath := flag.String("trace-chrome", "", "write a Chrome trace_event file (open at chrome://tracing)")
	metrics := flag.Bool("metrics", false, "print the per-run trace metrics summary table")
	sample := flag.Int64("trace-sample", 0, "trace counter sampling interval in cycles (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (go tool pprof format) to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wavesim [flags] file.wsl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()
	var w, h int
	if _, err := fmt.Sscanf(*grid, "%dx%d", &w, &h); err != nil {
		fatal(fmt.Errorf("bad -grid %q: %v", *grid, err))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := wavescalar.Compile(string(src), wavescalar.CompileConfig{Unroll: *unroll, Optimize: true, OptLevel: *optLevel})
	if err != nil {
		fatal(err)
	}
	var tr *trace.Tracer
	if *tracePath != "" || *chromePath != "" || *metrics {
		tr = trace.New(trace.Config{
			Events:         *tracePath != "" || *chromePath != "",
			SampleInterval: *sample,
		})
	}
	mem := *memFlag
	if mem == "" {
		mem = *memmode
	}
	res, err := prog.Simulate(wavescalar.SimConfig{
		GridW: w, GridH: h,
		Placement:  *pol,
		Density:    *density,
		InputQueue: *queue,
		MemoryMode: mem,
		MaxCycles:  *maxCycles,
		Faults:     *faults,
		FaultSeed:  *faultSeed,
		Tracer:     tr,
		Shards:     *shards,
	})
	if err != nil {
		fatal(err)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, tr.WriteJSONL); err != nil {
			fatal(err)
		}
	}
	if *chromePath != "" {
		if err := writeTrace(*chromePath, tr.WriteChromeTrace); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("result:             %d\n", res.Value)
	fmt.Printf("cycles:             %d\n", res.Cycles)
	fmt.Printf("fired instructions: %d (IPC %.3f)\n", res.Fired, res.IPC)
	fmt.Printf("operand tokens:     %d\n", res.Tokens)
	fmt.Printf("PEs used:           %d\n", res.PEsUsed)
	fmt.Printf("instruction swaps:  %d\n", res.Swaps)
	fmt.Printf("queue spills:       %d\n", res.Overflows)
	fmt.Printf("memory operations:  %d (L1 miss rate %.4f, coherence moves %d)\n",
		res.MemoryOps, res.L1MissRate, res.CoherenceMoves)
	fmt.Printf("network messages:   %d\n", res.NetworkMessages)
	if *faults != "" {
		fmt.Printf("fault injection:    %d defective PEs, %d mid-run kills (%d instructions migrated)\n",
			res.DefectivePEs, res.PEKills, res.MigratedInstrs)
		fmt.Printf("fault recovery:     %d drops, %d retransmits, %d delayed, %d cycles in ack timeouts\n",
			res.MessageDrops, res.MessageRetries, res.DelayedMessages, res.RetryWaitCycles)
	}
	if *metrics {
		fmt.Println()
		fmt.Println(tr.Metrics().Summary("WaveCache trace metrics").Render())
	}

	if *baseline {
		base, err := prog.SimulateBaseline(wavescalar.DefaultBaselineConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nbaseline superscalar: %d cycles (IPC %.3f, %d instructions, %.2f%% mispredicts)\n",
			base.Cycles, base.IPC, base.Instrs, 100*float64(base.Mispredicts)/float64(max(base.Branches, 1)))
		fmt.Printf("WaveCache speedup over baseline: %.2fx\n", float64(base.Cycles)/float64(res.Cycles))
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// writeTrace creates path and streams one of the tracer's export formats
// into it, reporting close errors (a full disk truncates JSON silently
// otherwise).
func writeTrace(path string, export func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// stopProfiles flushes any active profiles; fatal calls it so -cpuprofile
// output survives error exits (os.Exit skips defers).
var stopProfiles func()

// startProfiles begins CPU profiling (when cpu is non-empty) and arranges
// an allocation-profile snapshot at stop (when heap is non-empty). The
// returned stop function is idempotent.
func startProfiles(cpu, heap string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if heap != "" {
			f, err := os.Create(heap)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}, nil
}

// fatal reports err and exits: 3 with a structured diagnostic when the
// simulation aborted on a FaultError (watchdog, deadlock, unrecoverable
// fault), 1 otherwise — so drivers can tell "the run faulted" from "the
// invocation was wrong" without parsing stderr.
func fatal(err error) {
	if stopProfiles != nil {
		stopProfiles()
	}
	cli.WriteDiagnostic(os.Stderr, "wavesim", err)
	os.Exit(cli.Code(err))
}
