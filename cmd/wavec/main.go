// Command wavec compiles wsl source files to WaveScalar dataflow assembly.
//
// Usage:
//
//	wavec [-unroll N] [-O level] [-select] [-noopt] [-stats] file.wsl
//
// The assembly is written to standard output; -stats prints a per-function
// summary (instruction counts, waves, memory ops) to standard error.
package main

import (
	"flag"
	"fmt"
	"os"

	"wavescalar"
)

func main() {
	unroll := flag.Int("unroll", 4, "loop unrolling factor (1 disables)")
	useSelect := flag.Bool("select", false, "lower small diamonds to φ SELECT instead of steers")
	noopt := flag.Bool("noopt", false, "disable the IR optimizer")
	optLevel := flag.Int("O", 1, "optimization level: 0 = base passes only, 1 = memory tier (scalar replacement, store forwarding, dead stores)")
	showStats := flag.Bool("stats", false, "print compilation statistics to stderr")
	dotFunc := flag.String("dot", "", "emit a GraphViz graph of the named function ('main' for the entry) instead of assembly")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wavec [flags] file.wsl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cfg := wavescalar.CompileConfig{
		Unroll:    *unroll,
		UseSelect: *useSelect,
		Optimize:  !*noopt,
		OptLevel:  *optLevel,
	}
	prog, err := wavescalar.Compile(string(src), cfg)
	if err != nil {
		fatal(err)
	}
	if *dotFunc != "" {
		dot, err := prog.ExportDot(*dotFunc)
		if err != nil {
			fatal(err)
		}
		fmt.Print(dot)
	} else {
		fmt.Print(prog.Disassemble())
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "static dataflow instructions: %d\n", prog.StaticInstructions())
		chains := prog.ChainStats()
		fmt.Fprintf(os.Stderr, "memory chain slots: %d (loads %d, stores %d, mem-nops %d, calls %d, ends %d)\n",
			chains.Slots, chains.Loads, chains.Stores, chains.Nops, chains.Calls, chains.Ends)
		fmt.Fprintf(os.Stderr, "memory chains: %d (avg length %.1f, max %d)\n",
			chains.Chains, chains.AvgChain(), chains.MaxChain)
		if st, on := prog.OptStats(); on {
			fmt.Fprintf(os.Stderr, "memory tier: %d stores forwarded, %d loads reused, %d loads promoted, %d dead stores\n",
				st.StoresForwarded, st.LoadsReused, st.LoadsPromoted, st.DeadStores)
			fmt.Fprintf(os.Stderr, "memory tier: mem ops %d -> %d, instrs %d -> %d\n",
				st.MemBefore, st.MemAfter, st.InstrsBefore, st.InstrsAfter)
			// Chain-length before/after: recompile without the tier for the
			// baseline chains (cheap for a single program).
			base := cfg
			base.OptLevel = 0
			if unopt, err := wavescalar.Compile(string(src), base); err == nil {
				b := unopt.ChainStats()
				fmt.Fprintf(os.Stderr, "memory tier: chain slots %d -> %d, mem-nops %d -> %d, max chain %d -> %d\n",
					b.Slots, chains.Slots, b.Nops, chains.Nops, b.MaxChain, chains.MaxChain)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavec:", err)
	os.Exit(1)
}
