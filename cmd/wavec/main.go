// Command wavec compiles wsl source files to WaveScalar dataflow assembly.
//
// Usage:
//
//	wavec [-unroll N] [-select] [-noopt] [-stats] file.wsl
//
// The assembly is written to standard output; -stats prints a per-function
// summary (instruction counts, waves, memory ops) to standard error.
package main

import (
	"flag"
	"fmt"
	"os"

	"wavescalar"
)

func main() {
	unroll := flag.Int("unroll", 4, "loop unrolling factor (1 disables)")
	useSelect := flag.Bool("select", false, "lower small diamonds to φ SELECT instead of steers")
	noopt := flag.Bool("noopt", false, "disable the IR optimizer")
	showStats := flag.Bool("stats", false, "print compilation statistics to stderr")
	dotFunc := flag.String("dot", "", "emit a GraphViz graph of the named function ('main' for the entry) instead of assembly")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wavec [flags] file.wsl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cfg := wavescalar.CompileConfig{
		Unroll:    *unroll,
		UseSelect: *useSelect,
		Optimize:  !*noopt,
	}
	prog, err := wavescalar.Compile(string(src), cfg)
	if err != nil {
		fatal(err)
	}
	if *dotFunc != "" {
		dot, err := prog.ExportDot(*dotFunc)
		if err != nil {
			fatal(err)
		}
		fmt.Print(dot)
	} else {
		fmt.Print(prog.Disassemble())
	}
	if *showStats {
		fmt.Fprintf(os.Stderr, "static dataflow instructions: %d\n", prog.StaticInstructions())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavec:", err)
	os.Exit(1)
}
