// Command waverun executes a wsl program (or a .wsa assembly file) on the
// reference tagged-token dataflow interpreter — the ideal WaveScalar
// machine — and prints the result and execution statistics.
//
// Usage:
//
//	waverun [-asm] [-unroll N] file.wsl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wavescalar"
	"wavescalar/internal/cli"
)

func main() {
	isAsm := flag.Bool("asm", false, "input is WaveScalar assembly, not wsl source")
	unroll := flag.Int("unroll", 4, "loop unrolling factor for wsl input")
	optLevel := flag.Int("O", 1, "optimization level: 0 = base passes only, 1 = compiler memory tier")
	maxCycles := flag.Int64("max-cycles", 0,
		"abort after this many interpreter steps with a diagnostic dump (0 = default budget)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: waverun [flags] file.wsl|file.wsa\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var prog *wavescalar.Program
	if *isAsm || strings.HasSuffix(flag.Arg(0), ".wsa") {
		prog, err = wavescalar.ParseAssembly(string(data))
	} else {
		prog, err = wavescalar.Compile(string(data), wavescalar.CompileConfig{Unroll: *unroll, Optimize: true, OptLevel: *optLevel})
	}
	if err != nil {
		fatal(err)
	}

	res, err := prog.InterpretWithFuel(*maxCycles)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result: %d\n", res.Value)
	fmt.Printf("fired instructions:  %d\n", res.Fired)
	fmt.Printf("operand tokens:      %d\n", res.Tokens)
	fmt.Printf("steers:              %d\n", res.Steers)
	fmt.Printf("wave advances:       %d\n", res.WaveAdvances)
	fmt.Printf("memory operations:   %d\n", res.MemoryOps)
	fmt.Printf("peak in-flight tokens (exposed parallelism): %d\n", res.MaxParallelism)
}

// fatal reports err and exits: 3 with a structured diagnostic when a
// simulation aborted on a FaultError, 1 otherwise.
func fatal(err error) {
	cli.WriteDiagnostic(os.Stderr, "waverun", err)
	os.Exit(cli.Code(err))
}
