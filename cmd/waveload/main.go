// Command waveload drives a running waved with a mixed, multi-tenant
// request stream and reports the outcome distribution and client-side
// latency — the same scenario mix the serve soak test asserts on, as a
// standalone tool for exercising a real deployment.
//
// Usage:
//
//	waveload [-addr http://localhost:8335] [-n 500] [-workers 32]
//	         [-tenants 4] [-deadline-ms 10000] [-slow-pct 10]
//	         [-cancel-pct 10] [-sweep-pct 10] [-stats]
//
// The mix: fast deterministic simulations across several binaries, grids,
// and memory modes (repeats exercise the server's idempotency cache),
// compile-only requests, bounded corpus sweeps, deadline-doomed slow
// simulations, and client-side disconnects. Every response must be either
// a success or a structured error; anything else (code "internal",
// unstructured bodies, transport failures against a live server) counts
// as a failure and makes waveload exit 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wavescalar/internal/serve"
	"wavescalar/internal/stats"
)

const (
	fastSrc = `
func main() {
	var s = 0;
	for var i = 0; i < 200; i = i + 1 {
		s = (s + i*i) & 0xFFFFF;
	}
	return s;
}`
	slowSrc = `
func main() {
	var s = 0;
	for var i = 0; i < 3000000; i = i + 1 {
		s = (s + i) & 0xFFFFF;
	}
	return s;
}`
)

func main() {
	addr := flag.String("addr", "http://localhost:8335", "waved base URL (host:port is accepted and assumed http)")
	n := flag.Int("n", 500, "total requests")
	workers := flag.Int("workers", 32, "concurrent client workers")
	tenants := flag.Int("tenants", 4, "distinct tenants to spread load across")
	deadlineMS := flag.Int64("deadline-ms", 10_000, "deadline for normal requests")
	slowPct := flag.Int("slow-pct", 10, "percent of requests that are deadline-doomed slow simulations")
	cancelPct := flag.Int("cancel-pct", 10, "percent of requests the client abandons after 20ms")
	sweepPct := flag.Int("sweep-pct", 10, "percent of requests that are bounded corpus sweeps")
	showStats := flag.Bool("stats", false, "fetch and print /v1/stats after the run")
	flag.Parse()
	if *n <= 0 || *workers <= 0 || *tenants <= 0 {
		fmt.Fprintln(os.Stderr, "waveload: -n, -workers, -tenants must be positive")
		os.Exit(2)
	}
	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}

	sims := []serve.SimulateRequest{
		{Source: fastSrc},
		{Source: fastSrc, Binary: "select", Grid: "2x2"},
		{Source: fastSrc, Binary: "rolled", Unroll: 1, MemMode: "serialized"},
		{Workload: "gen:pipeline:7", Grid: "2x2"},
		{Workload: "gen:contention:3", MemMode: "ideal"},
		{Source: fastSrc, Faults: "defect=0.1,drop=0.01", FaultSeed: 7},
	}

	var (
		counts   sync.Map // code or outcome name -> *atomic.Int64
		failures atomic.Int64
		latMu    sync.Mutex
		lats     []float64 // ms, successful requests only
	)
	bump := func(k string) {
		v, _ := counts.LoadOrStore(k, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	recordLat := func(d time.Duration) {
		latMu.Lock()
		lats = append(lats, float64(d.Microseconds())/1000)
		latMu.Unlock()
	}
	// classify folds one request's outcome into the counters. A structured
	// error is expected under load; code "internal" or a transport error
	// against a live server is not.
	classify := func(apiErr *serve.ErrorResponse, err error, clientCancelled bool) {
		switch {
		case err != nil && clientCancelled:
			bump("client-cancelled")
		case err != nil:
			bump("transport-error")
			failures.Add(1)
			fmt.Fprintln(os.Stderr, "waveload:", err)
		case apiErr != nil:
			bump(apiErr.Code)
			if apiErr.Code == serve.CodeInternal {
				failures.Add(1)
				fmt.Fprintf(os.Stderr, "waveload: internal error: %s\n", apiErr.Error)
			}
		}
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < *n; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &serve.Client{BaseURL: *addr, Tenant: fmt.Sprintf("load-%d", w%*tenants)}
			for i := range next {
				pct := i % 100
				switch {
				case pct < *cancelPct:
					ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
					_, apiErr, err := client.Simulate(ctx, serve.SimulateRequest{Source: slowSrc})
					cancel()
					classify(apiErr, err, true)
				case pct < *cancelPct+*slowPct:
					_, apiErr, err := client.Simulate(context.Background(),
						serve.SimulateRequest{Source: slowSrc, DeadlineMS: 100})
					classify(apiErr, err, false)
				case pct < *cancelPct+*slowPct+*sweepPct:
					start := time.Now()
					resp, apiErr, err := client.Sweep(context.Background(),
						serve.SweepRequest{N: 3, Seed: 11, DeadlineMS: *deadlineMS})
					classify(apiErr, err, false)
					if err == nil && apiErr == nil {
						bump("ok-sweep")
						recordLat(time.Since(start))
						_ = resp
					}
				default:
					req := sims[i%len(sims)]
					req.DeadlineMS = *deadlineMS
					start := time.Now()
					resp, apiErr, err := client.Simulate(context.Background(), req)
					classify(apiErr, err, false)
					if err == nil && apiErr == nil {
						if resp.Cached {
							bump("ok-cached")
						} else {
							bump("ok")
						}
						recordLat(time.Since(start))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	t := stats.NewTable(fmt.Sprintf("waveload: %d requests, %d workers, %d tenants in %v (%.1f req/s)",
		*n, *workers, *tenants, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds()),
		"outcome", "count")
	var keys []string
	counts.Range(func(k, v any) bool { keys = append(keys, k.(string)); return true })
	sort.Strings(keys)
	for _, k := range keys {
		v, _ := counts.Load(k)
		t.AddRow(k, v.(*atomic.Int64).Load())
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		t.Note = fmt.Sprintf("client-side latency over %d successes: p50 %.1fms p99 %.1fms max %.1fms",
			len(lats), lats[len(lats)/2], lats[int(0.99*float64(len(lats)-1))], lats[len(lats)-1])
	}
	fmt.Println(t.Render())

	if *showStats {
		body, err := (&serve.Client{BaseURL: *addr}).Stats(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "waveload: stats:", err)
		} else {
			fmt.Println(body)
		}
	}
	if failures.Load() > 0 {
		fmt.Fprintf(os.Stderr, "waveload: %d unexpected failures\n", failures.Load())
		os.Exit(1)
	}
}
