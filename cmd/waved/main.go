// Command waved is the long-lived WaveScalar simulation service: an
// HTTP+JSON server exposing the compiler, the WaveCache simulator, and
// bounded corpus sweeps over the experiment harness, built to stay up
// under load it cannot serve.
//
// Usage:
//
//	waved [-addr :8335] [-cache-dir DIR]
//	      [-rate 50] [-burst 100] [-concurrency N] [-queue 4N]
//	      [-deadline 10s] [-max-deadline 60s] [-max-cycles 500000000]
//	      [-sweep-max 256] [-compiled 256]
//	      [-drain-budget 10s] [-drain-grace 2s]
//	      [-janitor 10m] [-prune age=24h,size=1GiB] [-idle-tenant 1h]
//
// Endpoints (see DESIGN.md §9 and the README "Serving" section):
//
//	POST /v1/simulate  one WaveCache simulation (JSON body)
//	POST /v1/compile   compile only: checksum and static shape
//	POST /v1/sweep     bounded corpus differential sweep
//	GET  /v1/stats     per-tenant service metrics (?format=json for JSON)
//	GET  /v1/healthz   200 serving / 503 draining
//
// Tenancy travels in the X-Tenant header; each tenant has its own token
// bucket and latency window. Overload sheds with structured 429/503
// bodies, request deadlines cancel simulations mid-run, and -cache-dir
// makes completed results retry-safe across identical requests.
//
// On SIGTERM or SIGINT, waved drains: new work is refused with 503
// draining, in-flight work gets -drain-budget to finish before being
// cancelled, and the final metrics tables are flushed to stderr. Exit is
// 0 after a clean drain, 1 if work had to be abandoned.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wavescalar/internal/harness"
	"wavescalar/internal/serve"
)

func main() {
	def := serve.DefaultConfig()
	addr := flag.String("addr", ":8335", "listen address")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (enables idempotent retries and resumable sweeps)")
	rate := flag.Float64("rate", def.TenantRate, "per-tenant admission rate, requests/sec (<= 0 disables rate limiting)")
	burst := flag.Int("burst", def.TenantBurst, "per-tenant token bucket capacity")
	concurrency := flag.Int("concurrency", def.MaxConcurrent, "simultaneously running requests")
	queue := flag.Int("queue", def.MaxQueue, "admitted requests waiting for a slot before load is shed")
	deadline := flag.Duration("deadline", def.DefaultDeadline, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", def.MaxDeadline, "maximum per-request deadline a client may ask for")
	maxCycles := flag.Int64("max-cycles", def.MaxCycles, "hard simulated-time watchdog cap per request")
	sweepMax := flag.Int("sweep-max", def.SweepMax, "maximum corpus size of one sweep request")
	compiled := flag.Int("compiled", def.MaxCompiled, "warm compiled-program cache entries")
	drainBudget := flag.Duration("drain-budget", 10*time.Second, "how long in-flight work may finish after SIGTERM before being cancelled")
	drainGrace := flag.Duration("drain-grace", def.DrainGrace, "how long cancelled work may unwind before waved gives up")
	janitor := flag.Duration("janitor", 10*time.Minute, "housekeeping interval (0 disables the janitor)")
	prune := flag.String("prune", "", "cache prune bounds applied by the janitor: age=DUR,size=BYTES (requires -cache-dir)")
	idleTenant := flag.Duration("idle-tenant", time.Hour, "forget tenants idle longer than this (0 keeps them forever)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: waved [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := def
	cfg.TenantRate = *rate
	cfg.TenantBurst = *burst
	cfg.MaxConcurrent = *concurrency
	cfg.MaxQueue = *queue
	cfg.DefaultDeadline = *deadline
	cfg.MaxDeadline = *maxDeadline
	cfg.MaxCycles = *maxCycles
	cfg.SweepMax = *sweepMax
	cfg.MaxCompiled = *compiled
	cfg.DrainGrace = *drainGrace
	cfg.CacheDir = *cacheDir
	cfg.Log = os.Stderr

	var pruneAge time.Duration
	var pruneBytes int64
	if *prune != "" {
		if *cacheDir == "" {
			fatal(errors.New("-prune requires -cache-dir"))
		}
		var err error
		if pruneAge, pruneBytes, err = harness.ParsePruneSpec(*prune); err != nil {
			fatal(err)
		}
	}

	s, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *janitor > 0 {
		s.StartJanitor(*janitor, pruneAge, pruneBytes, *idleTenant)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "waved: serving on %s (%d slots, queue %d, %g req/s/tenant)\n",
		*addr, cfg.MaxConcurrent, cfg.MaxQueue, cfg.TenantRate)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "waved: received %v, draining (budget %v)\n", sig, *drainBudget)
	case err := <-serveErr:
		fatal(err)
	}

	drainErr := s.Drain(*drainBudget)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "waved: http shutdown: %v\n", err)
	}
	s.FlushMetrics(os.Stderr)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "waved: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "waved: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "waved:", err)
	os.Exit(1)
}
