// Package wavescalar is the public API of this repository: a from-scratch
// implementation of the WaveScalar dataflow architecture (MICRO 2003) — the
// tagged-token dataflow ISA with wave-ordered memory, a compiler targeting
// it, the WaveCache tiled microarchitecture simulator, and an out-of-order
// superscalar baseline for comparison.
//
// Quick start:
//
//	prog, err := wavescalar.Compile(src, wavescalar.DefaultCompileConfig())
//	value, _ := prog.Interpret()               // ideal dataflow machine
//	res, _ := prog.Simulate(wavescalar.DefaultSimConfig())   // WaveCache
//	base, _ := prog.SimulateBaseline(wavescalar.DefaultBaselineConfig())
//	fmt.Println(res.Cycles, base.Cycles)
//
// The experiment harness that regenerates the paper's evaluation lives in
// cmd/waveexp; the language reference is in internal/lang's package
// documentation.
package wavescalar

import (
	"errors"
	"fmt"

	"wavescalar/internal/asm"
	"wavescalar/internal/cfgir"
	"wavescalar/internal/fault"
	"wavescalar/internal/interp"
	"wavescalar/internal/isa"
	"wavescalar/internal/lang"
	"wavescalar/internal/linear"
	"wavescalar/internal/ooo"
	"wavescalar/internal/placement"

	// Registers the "profile-feedback" placement policy so the CLIs and
	// PlacementPolicies expose it.
	_ "wavescalar/internal/placemodel"
	"wavescalar/internal/trace"
	"wavescalar/internal/wavec"
	"wavescalar/internal/wavecache"
)

// CompileConfig controls the compilation pipeline.
type CompileConfig struct {
	// Unroll is the loop-unrolling factor (0 or 1 disables).
	Unroll int
	// UseSelect lowers small pure if/else diamonds to φ SELECT
	// instructions instead of φ⁻¹ steers.
	UseSelect bool
	// Optimize enables the IR optimizer (constant folding, CSE, DCE).
	Optimize bool
	// OptLevel selects the optimizer tier when Optimize is set: 0 runs
	// only the base pipeline, 1 adds the memory tier (store-to-load
	// forwarding, redundant-load elimination, scalar replacement,
	// dead-store elimination) — the CLIs' -O flag.
	OptLevel int
}

// DefaultCompileConfig mirrors the experiment harness pipeline: unroll by
// 4, full optimization including the memory tier.
func DefaultCompileConfig() CompileConfig {
	return CompileConfig{Unroll: 4, Optimize: true, OptLevel: 1}
}

// Program is a compiled wsl program, carrying both the WaveScalar dataflow
// binary and the linear baseline binary.
type Program struct {
	Source   string
	dataflow *isa.Program
	linear   *linear.Program
	memOpt   cfgir.MemOptStats
	optLevel int
}

// OptStats reports the memory-optimization tier's per-pass counters for
// the dataflow build (zero when compiled below opt level 1) and whether
// the tier ran.
func (p *Program) OptStats() (cfgir.MemOptStats, bool) {
	return p.memOpt, p.optLevel >= 1
}

// ChainStats summarizes the dataflow binary's wave-ordered memory chains.
func (p *Program) ChainStats() wavec.ChainStats { return wavec.MeasureChains(p.dataflow) }

// Compile runs the full pipeline: lex/parse/check, optional unrolling, IR
// construction and optimization, then both backends.
func Compile(src string, cfg CompileConfig) (*Program, error) {
	build := func() (*cfgir.Program, cfgir.MemOptStats, error) {
		var st cfgir.MemOptStats
		f, err := lang.ParseAndCheck(src)
		if err != nil {
			return nil, st, err
		}
		if cfg.Unroll > 1 {
			lang.Unroll(f, cfg.Unroll)
		}
		p, err := cfgir.Build(f)
		if err != nil {
			return nil, st, err
		}
		for _, fn := range p.Funcs {
			fn.Compact()
		}
		if cfg.Optimize {
			p.Optimize()
			if cfg.OptLevel >= 1 {
				st = p.OptimizeMemory()
			}
		}
		return p, st, nil
	}

	// The dataflow backend mutates the IR, so build twice.
	irForLinear, _, err := build()
	if err != nil {
		return nil, err
	}
	lp, err := linear.Compile(irForLinear)
	if err != nil {
		return nil, err
	}
	irForWave, memOpt, err := build()
	if err != nil {
		return nil, err
	}
	wp, err := wavec.Compile(irForWave, wavec.Options{IfConvert: cfg.UseSelect})
	if err != nil {
		return nil, err
	}
	lvl := 0
	if cfg.Optimize {
		lvl = cfg.OptLevel
	}
	return &Program{Source: src, dataflow: wp, linear: lp, memOpt: memOpt, optLevel: lvl}, nil
}

// Disassemble renders the WaveScalar dataflow binary as assembly text.
func (p *Program) Disassemble() string { return asm.Print(p.dataflow) }

// ExportDot renders a function's dataflow graph in GraphViz format (pipe
// through `dot -Tsvg`). The empty name selects the entry function.
func (p *Program) ExportDot(function string) (string, error) {
	fn := p.dataflow.Entry
	if function != "" {
		found := isa.NoFunc
		for i := range p.dataflow.Funcs {
			if p.dataflow.Funcs[i].Name == function {
				found = isa.FuncID(i)
				break
			}
		}
		if found == isa.NoFunc {
			return "", fmt.Errorf("wavescalar: no function %q", function)
		}
		fn = found
	}
	return asm.Dot(p.dataflow, fn), nil
}

// EncodeBinary serializes the dataflow binary to the compact on-disk
// format; DecodeBinary loads it back.
func (p *Program) EncodeBinary() []byte { return isa.Encode(p.dataflow) }

// DecodeBinary loads a program from the binary format produced by
// EncodeBinary. Like ParseAssembly, the result has no linear baseline.
func DecodeBinary(data []byte) (*Program, error) {
	dp, err := isa.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Program{dataflow: dp}, nil
}

// StaticInstructions returns the dataflow binary's instruction count.
func (p *Program) StaticInstructions() int { return p.dataflow.NumInstrs() }

// InterpretResult reports an ideal-dataflow-machine run.
type InterpretResult struct {
	Value        int64
	Fired        uint64 // dynamic dataflow instructions
	Tokens       uint64
	WaveAdvances uint64
	Steers       uint64
	MemoryOps    uint64
	// MaxParallelism is the high-water mark of simultaneously in-flight
	// tokens.
	MaxParallelism int
}

// Interpret executes the program on the reference tagged-token dataflow
// interpreter (unbounded PEs, unit latency).
func (p *Program) Interpret() (InterpretResult, error) { return p.InterpretWithFuel(0) }

// InterpretWithFuel is Interpret under a step budget: a runaway or
// deadlocked program terminates with an error carrying the interpreter's
// diagnostic state dump instead of running forever (0 = default budget).
func (p *Program) InterpretWithFuel(fuel int64) (InterpretResult, error) {
	m := interp.New(p.dataflow, fuel)
	v, err := m.Run()
	if err != nil {
		if errors.Is(err, interp.ErrFuel) {
			// Budget exhaustion is the interpreter's watchdog: classify it
			// like the simulators' so callers (and CLI exit codes) see one
			// fault taxonomy. The interpreter has no cycles; fired
			// instructions are its time axis.
			err = &fault.FaultError{
				Kind:   fault.KindWatchdog,
				PE:     -1,
				Cycle:  int64(m.Stats().Fired),
				Detail: err.Error(),
			}
		}
		return InterpretResult{}, err
	}
	st := m.Stats()
	return InterpretResult{
		Value:          v,
		Fired:          st.Fired,
		Tokens:         st.Tokens,
		WaveAdvances:   st.WaveAdvance,
		Steers:         st.Steers,
		MemoryOps:      st.Loads + st.Stores,
		MaxParallelism: m.MaxQueue(),
	}, nil
}

// SimConfig parameterizes the WaveCache simulation. Zero values select the
// published processor parameters scaled for kernel workloads.
type SimConfig struct {
	// GridW x GridH clusters (default 4x4).
	GridW, GridH int
	// Placement policy name (see PlacementPolicies; default
	// dynamic-depth-first-snake).
	Placement string
	// Density is the number of instruction homes packed per PE (default 16).
	Density int
	// PEStore is the per-PE instruction store size (default 64).
	PEStore int
	// InputQueue is the matching-table capacity before spills (default 64).
	InputQueue int
	// MemoryMode is "wave-ordered" (default), "serialized", "ideal", or
	// "spec" (speculative transactional wave-ordered memory).
	MemoryMode string
	// L1Words overrides the per-cluster L1 size in 64-bit words.
	L1Words int64
	// Fuel bounds fired instructions (0 = default).
	Fuel int64
	// MaxCycles bounds simulated time; exceeding it aborts with the
	// watchdog's diagnostic dump (0 = unbounded).
	MaxCycles int64
	// Faults is the fault-injection specification, comma-separated
	// key=value pairs: defect, drop, delay, memloss (rates in [0,1]),
	// kill=PE@CYCLE, retries=N, timeout=CYCLES, delaycycles=CYCLES.
	// Empty disables injection.
	Faults string
	// FaultSeed drives every fault decision; the same (seed, spec) pair
	// reproduces a faulty run bit-for-bit.
	FaultSeed uint64
	// Tracer, when non-nil, records per-cycle metrics and (if the tracer's
	// Config enables them) a structured event stream for this run. A nil
	// Tracer leaves the simulation bit-identical to an untraced run; a
	// Tracer must not be shared across concurrent Simulate calls.
	Tracer *trace.Tracer
	// Shards is the event-engine shard count: 0 or 1 runs the sequential
	// engine, higher values execute cluster-local event batches on
	// parallel per-cluster-range shards. Results are bit-identical at
	// every setting; runs with Faults or an event-stream Tracer pin to
	// the sequential engine.
	Shards int
}

// DefaultSimConfig returns the tuned kernel-scale configuration.
func DefaultSimConfig() SimConfig { return SimConfig{} }

// PlacementPolicies lists the available placement policy names.
func PlacementPolicies() []string { return placement.Names() }

// SimResult reports a WaveCache simulation.
type SimResult struct {
	Value     int64
	Cycles    int64
	Fired     uint64
	IPC       float64
	Tokens    uint64
	Swaps     uint64
	Overflows uint64
	PEsUsed   int

	L1MissRate      float64
	CoherenceMoves  uint64
	NetworkMessages uint64
	MemoryOps       uint64

	// Fault injection and recovery (all zero without a Faults spec).
	DefectivePEs    int
	PEKills         uint64
	MigratedInstrs  uint64
	MessageDrops    uint64 // lost attempts (operand network + store buffer)
	MessageRetries  uint64 // successful retransmits
	RetryWaitCycles uint64 // cycles spent in ack timeouts before retransmits
	DelayedMessages uint64
}

// Simulate runs the program on the cycle-level WaveCache simulator.
func (p *Program) Simulate(sc SimConfig) (SimResult, error) {
	if sc.GridW == 0 {
		sc.GridW = 4
	}
	if sc.GridH == 0 {
		sc.GridH = 4
	}
	cfg := wavecache.DefaultConfig(sc.GridW, sc.GridH)
	if sc.Density == 0 {
		sc.Density = 16
	}
	cfg.Machine.Capacity = sc.Density
	if sc.PEStore != 0 {
		cfg.PEStore = sc.PEStore
	}
	if sc.InputQueue == 0 {
		sc.InputQueue = 64
	}
	cfg.InputQueue = sc.InputQueue
	mm, err := wavecache.ParseMemoryMode(sc.MemoryMode)
	if err != nil {
		return SimResult{}, fmt.Errorf("wavescalar: %v", err)
	}
	cfg.MemMode = mm
	if sc.L1Words != 0 {
		cfg.Mem.L1.SizeWords = sc.L1Words
	}
	cfg.Fuel = sc.Fuel
	cfg.MaxCycles = sc.MaxCycles
	cfg.Shards = sc.Shards
	if sc.Faults != "" {
		fc, err := fault.ParseSpec(sc.Faults)
		if err != nil {
			return SimResult{}, err
		}
		fc.Seed = sc.FaultSeed
		cfg.Faults = fc
		// Placement and simulator must agree on the defect map, so it is
		// installed on the machine before the policy is constructed.
		cfg.Machine.Defective = fault.DefectMap(fc, cfg.Machine.NumPEs())
	}
	if sc.Placement == "" {
		sc.Placement = "dynamic-depth-first-snake"
	}
	pol, err := placement.New(sc.Placement, cfg.Machine, p.dataflow, 12345)
	if err != nil {
		return SimResult{}, err
	}
	if sc.Tracer != nil {
		cfg.Tracer = sc.Tracer
		pol = placement.Traced(pol, sc.Tracer)
	}
	res, err := wavecache.Run(p.dataflow, pol, cfg)
	if err != nil {
		return SimResult{}, err
	}
	out := SimResult{
		Value:           res.Value,
		Cycles:          res.Cycles,
		Fired:           res.Fired,
		IPC:             res.IPC,
		Tokens:          res.Tokens,
		Swaps:           res.Swaps,
		Overflows:       res.Overflows,
		PEsUsed:         res.PEsUsed,
		CoherenceMoves:  res.Mem.Transfers + res.Mem.Invals,
		NetworkMessages: res.Net.Messages,
		MemoryOps:       res.Order.Loads + res.Order.Stores,
		DefectivePEs:    res.Faults.DefectivePEs,
		PEKills:         res.Faults.PEKills,
		MigratedInstrs:  res.Faults.MigratedInstrs,
		MessageDrops:    res.Net.Drops + res.Faults.MemDrops,
		MessageRetries:  res.Net.Retries + res.Faults.MemRetries,
		RetryWaitCycles: res.Net.RetryWaitCycles + res.Faults.MemRetryWait,
		DelayedMessages: res.Net.Delayed + res.Faults.DelayedTokens,
	}
	if res.Mem.Accesses > 0 {
		out.L1MissRate = float64(res.Mem.L1Misses) / float64(res.Mem.Accesses)
	}
	return out, nil
}

// BaselineConfig parameterizes the out-of-order superscalar baseline.
type BaselineConfig struct {
	// Width sets fetch/issue/commit width (default 8).
	Width int
	// WindowSize is the ROB size (default 256).
	WindowSize int
	// L1Words overrides the L1 size.
	L1Words int64
	// Fuel bounds dynamic instructions (0 = default).
	Fuel int64
}

// DefaultBaselineConfig is the aggressive superscalar of the evaluation.
func DefaultBaselineConfig() BaselineConfig { return BaselineConfig{} }

// BaselineResult reports a superscalar simulation.
type BaselineResult struct {
	Value       int64
	Cycles      int64
	Instrs      uint64
	IPC         float64
	Branches    uint64
	Mispredicts uint64
	L1MissRate  float64
}

// SimulateBaseline runs the program on the out-of-order superscalar model.
func (p *Program) SimulateBaseline(bc BaselineConfig) (BaselineResult, error) {
	if p.linear == nil {
		return BaselineResult{}, ErrNoBaseline
	}
	cfg := ooo.DefaultConfig()
	if bc.Width != 0 {
		cfg.FetchWidth, cfg.IssueWidth, cfg.CommitWidth = bc.Width, bc.Width, bc.Width
	}
	if bc.WindowSize != 0 {
		cfg.ROBSize = bc.WindowSize
	}
	if bc.L1Words != 0 {
		cfg.Mem.L1.SizeWords = bc.L1Words
	}
	cfg.Fuel = bc.Fuel
	res, err := ooo.Run(p.linear, cfg)
	if err != nil {
		return BaselineResult{}, err
	}
	out := BaselineResult{
		Value:       res.Value,
		Cycles:      res.Cycles,
		Instrs:      res.Instrs,
		IPC:         res.IPC,
		Branches:    res.Branches,
		Mispredicts: res.Mispredicts,
	}
	if res.Mem.Accesses > 0 {
		out.L1MissRate = float64(res.Mem.L1Misses) / float64(res.Mem.Accesses)
	}
	return out, nil
}

// ParseAssembly loads a hand-written WaveScalar assembly program. The
// linear baseline is unavailable for such programs (Simulate and Interpret
// work; SimulateBaseline returns an error).
func ParseAssembly(text string) (*Program, error) {
	p, err := asm.Parse(text)
	if err != nil {
		return nil, err
	}
	return &Program{dataflow: p}, nil
}

// ErrNoBaseline is returned by SimulateBaseline for programs loaded from
// assembly.
var ErrNoBaseline = fmt.Errorf("wavescalar: program has no linear baseline binary")
