// Quickstart: compile a small wsl program to a WaveScalar dataflow binary,
// run it on the ideal dataflow machine, the cycle-level WaveCache, and the
// superscalar baseline, and print what happened.
package main

import (
	"fmt"
	"log"

	"wavescalar"
)

const src = `
// dot product with a strided twist: enough memory traffic and control to
// exercise waves, steers, and wave-ordered memory.
global x[64];
global y[64];

func main() {
	for var i = 0; i < 64; i = i + 1 {
		x[i] = i + 1;
		y[i] = 64 - i;
	}
	var dot = 0;
	for var i = 0; i < 64; i = i + 1 {
		dot = dot + x[i] * y[(i * 3) % 64];
	}
	return dot;
}
`

func main() {
	prog, err := wavescalar.Compile(src, wavescalar.DefaultCompileConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled to %d static dataflow instructions\n\n", prog.StaticInstructions())

	ideal, err := prog.Interpret()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ideal dataflow machine (unbounded PEs):")
	fmt.Printf("  result=%d  fired=%d  tokens=%d  peak parallelism=%d\n\n",
		ideal.Value, ideal.Fired, ideal.Tokens, ideal.MaxParallelism)

	sim, err := prog.Simulate(wavescalar.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("WaveCache (4x4 clusters, published parameters):")
	fmt.Printf("  result=%d  cycles=%d  IPC=%.2f  PEs used=%d  L1 miss rate=%.4f\n\n",
		sim.Value, sim.Cycles, sim.IPC, sim.PEsUsed, sim.L1MissRate)

	base, err := prog.SimulateBaseline(wavescalar.DefaultBaselineConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("out-of-order superscalar baseline (8-wide, 256-entry window):")
	fmt.Printf("  result=%d  cycles=%d  IPC=%.2f\n\n", base.Value, base.Cycles, base.IPC)

	if ideal.Value != sim.Value || sim.Value != base.Value {
		log.Fatal("engines disagree!")
	}
	fmt.Printf("all three engines agree on the result (%d)\n", sim.Value)
}
