// speedup runs one benchmark kernel head-to-head — WaveCache versus the
// out-of-order superscalar — across the three memory-ordering strategies,
// reproducing the paper's central claim in miniature: wave-ordered memory
// recovers almost all of an oracle memory's performance, while the
// dependence-token serialization a dataflow machine would otherwise need
// collapses, and the gap to the superscalar tracks how much memory
// parallelism the kernel exposes.
package main

import (
	"fmt"
	"log"

	"wavescalar"
	"wavescalar/internal/workloads"
)

func main() {
	w := workloads.ByName("equake")
	fmt.Printf("benchmark: %s (mirrors %s)\n%s\n\n", w.Name, w.Mirrors, w.Description)

	prog, err := wavescalar.Compile(w.Src, wavescalar.DefaultCompileConfig())
	if err != nil {
		log.Fatal(err)
	}

	base, err := prog.SimulateBaseline(wavescalar.DefaultBaselineConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("superscalar baseline: %d cycles (IPC %.2f)\n\n", base.Cycles, base.IPC)

	fmt.Printf("%-14s %10s %8s %18s\n", "memory mode", "cycles", "IPC", "vs. superscalar")
	var ordered int64
	for _, mode := range []string{"serialized", "wave-ordered", "ideal"} {
		res, err := prog.Simulate(wavescalar.SimConfig{MemoryMode: mode})
		if err != nil {
			log.Fatal(err)
		}
		if res.Value != base.Value {
			log.Fatalf("engines disagree: %d vs %d", res.Value, base.Value)
		}
		if mode == "wave-ordered" {
			ordered = res.Cycles
		}
		fmt.Printf("%-14s %10d %8.2f %17.2fx\n", mode, res.Cycles, res.IPC,
			float64(base.Cycles)/float64(res.Cycles))
	}
	fmt.Println()
	fmt.Printf("wave-ordered memory is the paper's contribution: it gives the\n")
	fmt.Printf("dataflow machine C-compatible memory semantics at %d cycles here,\n", ordered)
	fmt.Printf("close to the oracle and far from the serialized strawman.\n")
}
