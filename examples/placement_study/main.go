// placement_study reproduces the packing-versus-dispersion trade-off at the
// heart of WaveCache instruction placement: it runs two workloads with
// opposite characters — a serial dependence chain (latency-bound) and a
// deeply recursive tree (contention-bound) — under every placement policy
// and shows that no single extreme wins both, while
// dynamic-depth-first-snake balances the two concerns.
package main

import (
	"fmt"
	"log"

	"wavescalar"
)

// chain is latency-bound: one long serial dependence, no parallelism for
// dispersion to exploit. Placement quality == operand locality.
const chain = `
func main() {
	var x = 12345;
	for var i = 0; i < 3000; i = i + 1 {
		x = (x * 48271) % 2147483647;
	}
	return x;
}
`

// tree is contention-bound: thousands of concurrent activations hammer the
// same few static instructions, so spreading them over PEs is what matters.
const tree = `
func fib(n) {
	if n < 2 { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() { return fib(16); }
`

func main() {
	workloads := []struct {
		name string
		src  string
	}{
		{"serial-chain (latency-bound)", chain},
		{"recursion-tree (contention-bound)", tree},
	}
	for _, w := range workloads {
		prog, err := wavescalar.Compile(w.src, wavescalar.DefaultCompileConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%d static instructions)\n", w.name, prog.StaticInstructions())
		fmt.Printf("  %-28s %10s %8s\n", "policy", "cycles", "IPC")
		best, bestCycles := "", int64(0)
		for _, pol := range wavescalar.PlacementPolicies() {
			res, err := prog.Simulate(wavescalar.SimConfig{Placement: pol})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-28s %10d %8.2f\n", pol, res.Cycles, res.IPC)
			if best == "" || res.Cycles < bestCycles {
				best, bestCycles = pol, res.Cycles
			}
		}
		fmt.Printf("  -> best: %s\n", best)
	}
	fmt.Println("\nThe serial chain rewards packing (snake variants keep dependent")
	fmt.Println("instructions on the pod bypass); the recursion tree rewards")
	fmt.Println("dispersion (each PE fires once per cycle, so scattering relieves")
	fmt.Println("contention). This is the tension the placement-model follow-on")
	fmt.Println("paper (SPAA 2006) quantifies, and why dynamic-depth-first-snake")
	fmt.Println("— chains for locality, demand-driven packing for utilization —")
	fmt.Println("is the default policy here.")
}
