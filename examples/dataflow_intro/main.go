// dataflow_intro dissects a compiled WaveScalar binary: it prints the
// dataflow assembly of a small loop and annotates what each piece is —
// waves, steers, wave advances, and the wave-ordered memory annotations —
// then runs the program and shows how the ordering chain issued.
package main

import (
	"fmt"
	"log"
	"strings"

	"wavescalar"
)

const src = `
// One loop with a branch and memory on both paths: small enough to read
// the whole dataflow graph, rich enough to show every ISA mechanism.
global evens[8];
global odds[8];

func main() {
	for var i = 0; i < 16; i = i + 1 {
		if i % 2 == 0 {
			evens[i / 2] = i;
		} else {
			odds[i / 2] = i;
		}
	}
	return evens[3] * 100 + odds[3];
}
`

func main() {
	// Compile without unrolling so the graph stays readable.
	prog, err := wavescalar.Compile(src, wavescalar.CompileConfig{Unroll: 1, Optimize: true})
	if err != nil {
		log.Fatal(err)
	}

	asm := prog.Disassemble()
	fmt.Println("=== WaveScalar dataflow assembly ===")
	fmt.Println(asm)

	fmt.Println("=== what to look for ===")
	lines := strings.Split(asm, "\n")
	count := func(sub string) int {
		n := 0
		for _, l := range lines {
			if strings.Contains(l, sub) {
				n++
			}
		}
		return n
	}
	fmt.Printf("steer instructions (φ⁻¹, one per live value per branch): %d\n", count(" steer "))
	fmt.Printf("wave-advance instructions (tag increment on wave crossings): %d\n", count("wave-advance"))
	fmt.Printf("memory-annotated instructions (mem=kind,seq,pred,succ): %d\n", count(" mem="))
	fmt.Printf("memory nops (ordering chain through memory-silent paths): %d\n", count("mem-nop"))
	fmt.Println()
	fmt.Println("annotation syntax: mem=store,3,2,? means \"I am memory slot 3 of")
	fmt.Println("my wave, slot 2 precedes me, and my successor depends on the")
	fmt.Println("branch path taken ('?'). '^' marks a wave's first slot, '$' its")
	fmt.Println("last. The store buffer chains these at runtime to recover the")
	fmt.Println("program order of the dynamically executed path.")
	fmt.Println()

	res, err := prog.Interpret()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== execution on the ideal dataflow machine ===")
	fmt.Printf("result: %d (evens[3]=6, odds[3]=7 -> 607)\n", res.Value)
	fmt.Printf("fired: %d instructions, %d steers, %d wave advances, %d memory ops\n",
		res.Fired, res.Steers, res.WaveAdvances, res.MemoryOps)
	fmt.Printf("the 16 iterations ran as %d dynamic waves; at peak, %d tokens were in flight\n",
		res.WaveAdvances/uint64(countLiveValues(asm)), res.MaxParallelism)
}

// countLiveValues estimates live values per wave crossing from the advance
// population of the loop (purely cosmetic for the narration).
func countLiveValues(asm string) int {
	n := strings.Count(asm, "wave-advance")
	if n == 0 {
		return 1
	}
	// The loop back edge advances each live value once per iteration.
	if n > 16 {
		return n / 16
	}
	return 1
}
