// handwritten_asm builds a WaveScalar dataflow program directly in assembly
// — no compiler involved — to show the raw execution model: a counted loop
// whose control is a steer, whose iterations are separated by wave
// advances, and whose memory traffic carries hand-written wave-ordered
// annotations.
//
// The program computes sum(i*i for i = 0..9) through memory: each iteration
// loads the accumulator, adds i*i, and stores it back. The accumulator
// needs no steering or loop-carried token at all — wave-ordered memory
// sequences the iterations' loads and stores by itself, which is precisely
// the paper's contribution.
//
// Dataflow graph:
//
//	i0 trigger ──┬─> i1 mem-nop (completes wave 0's chain)
//	             └─> i2 advance ──> i3 "i" hub          (wave 1 = one iteration)
//	  i3 ─> i4 mul(i,i) ────────────> i8 add ─> i9 store acc   chain: ^ load(0) → store(1) $
//	  i3 ─> i5 and(i,#0)=0 ─┬─> i6 load acc ─> i8
//	  i3 ─> i7 add(i,#1) ───┼─> i11 lt(#10) ─> i10 steer pred
//	                        └────────────────> i10 steer value (i+1)
//	  i10 T─> i12 advance ─> i3   (next iteration)
//	  i10 F─> i13 advance ─> i14 and(#0) ─> i15 load acc ─> i16 return (MemEnd)
package main

import (
	"fmt"
	"log"

	"wavescalar"
)

const src = `
memwords 1
global acc 0 1
func main entry touches numwaves=3
  params i0
  i0: nop wave=0 D[i1.0 i2.0] ; activation trigger, value 0
  i1: mem-nop mem=nop,0,^,$ wave=0 ; wave 0 is memory-silent: one-nop chain
  i2: wave-advance wave=0 D[i3.0] ; i = 0 enters the loop
  i3: nop wave=1 D[i4.0 i4.1 i5.0 i7.0] ; the induction value i
  i4: mul wave=1 D[i8.1] ; i*i
  i5: and imm1=0 wave=1 D[i6.0 i9.0] ; manufacture address 0 from i
  i6: load mem=load,0,^,1 wave=1 D[i8.0] ; acc[0]  (slot 0, wave start)
  i7: add imm1=1 wave=1 D[i10.1 i11.0] ; i+1
  i8: add wave=1 D[i9.1] ; acc[0] + i*i
  i9: store mem=store,1,0,$ wave=1 ; acc[0] = sum  (slot 1 ends the wave)
  i10: steer wave=1 T[i12.0] F[i13.0] ; loop-carry i+1 or exit
  i11: lt imm1=10 wave=1 D[i10.0] ; i+1 < 10 ?
  i12: wave-advance wave=1 D[i3.0] ; back edge: next iteration
  i13: wave-advance wave=1 D[i14.0] ; exit edge: into the epilogue
  i14: and imm1=0 wave=2 D[i15.0] ; address 0 again
  i15: load mem=load,0,^,1 wave=2 D[i16.0] ; final accumulator value
  i16: return mem=end,1,0,$ wave=2 ; ends the activation's memory sequence
`

func main() {
	prog, err := wavescalar.ParseAssembly(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Interpret()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("handwritten dataflow program result: %d (want 285 = sum of squares 0..9)\n", res.Value)
	fmt.Printf("fired %d instructions, %d wave advances, %d memory operations\n",
		res.Fired, res.WaveAdvances, res.MemoryOps)
	fmt.Println()
	fmt.Println("note what is absent: no loop-carried accumulator token. The")
	fmt.Println("iterations' loads and stores are sequenced purely by their")
	fmt.Println("wave-ordered annotations — wave w+1's load cannot issue before")
	fmt.Println("wave w's chain (load, then store) completes.")
	fmt.Println()

	sim, err := prog.Simulate(wavescalar.SimConfig{GridW: 1, GridH: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on the WaveCache: %d cycles at IPC %.2f across %d PEs\n",
		sim.Cycles, sim.IPC, sim.PEsUsed)
	if res.Value != 285 || sim.Value != 285 {
		log.Fatal("wrong answer!")
	}
}
