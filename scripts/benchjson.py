#!/usr/bin/env python3
"""Render a BENCH_<n>.json before/after record from two `go test -bench`
output files (interleaved A/B runs of two prebuilt binaries). Usage:

    python3 scripts/benchjson.py before.txt after.txt description command > BENCH_n.json

Medians are taken per benchmark across all samples in each file; the
geomean is over the per-benchmark median speedups.
"""
import json
import math
import re
import statistics
import sys


def parse(path):
    out = {}
    cpu = None
    for line in open(path):
        if line.startswith("cpu:"):
            cpu = line.split(":", 1)[1].strip()
        m = re.match(
            r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op",
            line,
        )
        if m:
            out.setdefault(m.group(1), []).append(
                (int(m.group(2)), int(m.group(3)), int(m.group(4)))
            )
    return out, cpu


def med(samples, i):
    return statistics.median(s[i] for s in samples)


def main():
    before_path, after_path, description, command = sys.argv[1:5]
    before, cpu = parse(before_path)
    after, _ = parse(after_path)
    results = []
    logs = []
    for name in sorted(before, key=lambda s: int(re.search(r"E(\d+)", s).group(1))):
        if name not in after:
            continue
        b, a = before[name], after[name]
        speedup = med(b, 0) / med(a, 0)
        logs.append(math.log(speedup))
        results.append(
            {
                "benchmark": name,
                "count": min(len(b), len(a)),
                "before": {
                    "ns_op_median": int(med(b, 0)),
                    "bytes_op_median": int(med(b, 1)),
                    "allocs_op_median": int(med(b, 2)),
                },
                "after": {
                    "ns_op_median": int(med(a, 0)),
                    "bytes_op_median": int(med(a, 1)),
                    "allocs_op_median": int(med(a, 2)),
                },
                "speedup": round(speedup, 2),
                "allocs_ratio": round(med(a, 2) / max(med(b, 2), 1), 3),
            }
        )
    doc = {
        "description": description,
        "cpu": cpu,
        "command": command,
        "geomean_speedup": round(math.exp(sum(logs) / len(logs)), 2),
        "results": results,
    }
    json.dump(doc, sys.stdout, indent=2)
    print()


if __name__ == "__main__":
    main()
